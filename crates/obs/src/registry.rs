//! The process-wide metrics registry: named counters and duration
//! histograms behind mutexes.
//!
//! Metric names are `&'static str` on purpose: the set of stages and
//! counters is a closed, code-defined vocabulary (dynamic labels would
//! make the exposition schema unstable). Counters are plain sums and
//! histograms merge by bucket addition, so a snapshot's deterministic
//! part is identical whatever the worker count or completion order.

use crate::hist::LogHistogram;
use crate::metrics::MetricsSnapshot;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

/// A set of named counters and duration histograms.
///
/// Most callers use the process-wide [`global`] instance; tests that
/// need isolation can construct their own.
#[derive(Debug)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, u64>>,
    durations: Mutex<BTreeMap<&'static str, LogHistogram>>,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry.
    pub const fn new() -> Registry {
        Registry {
            counters: Mutex::new(BTreeMap::new()),
            durations: Mutex::new(BTreeMap::new()),
        }
    }

    /// Adds `n` to the counter `name` (creating it at 0).
    pub fn add(&self, name: &'static str, n: u64) {
        let mut counters = lock_recover(&self.counters);
        *counters.entry(name).or_insert(0) += n;
    }

    /// Ensures the counter `name` exists (at 0) so rarely-hit counters
    /// still appear in every exposition with a stable value.
    pub fn declare(&self, name: &'static str) {
        let mut counters = lock_recover(&self.counters);
        counters.entry(name).or_insert(0);
    }

    /// Reads a counter's current value (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        lock_recover(&self.counters).get(name).copied().unwrap_or(0)
    }

    /// Records a duration into the histogram `name`.
    pub fn record(&self, name: &'static str, duration: Duration) {
        let nanos = duration.as_nanos().min(u64::MAX as u128) as u64;
        let mut durations = lock_recover(&self.durations);
        durations.entry(name).or_default().record(nanos);
    }

    /// A point-in-time copy of every counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: lock_recover(&self.counters).clone(),
            stages: lock_recover(&self.durations).clone(),
        }
    }

    /// Clears every counter and histogram (test isolation).
    pub fn reset(&self) {
        lock_recover(&self.counters).clear();
        lock_recover(&self.durations).clear();
    }
}

/// Locks a mutex, recovering from poisoning: metrics must never cascade
/// a panic from an unrelated thread.
fn lock_recover<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

static GLOBAL: Registry = Registry::new();

/// The process-wide registry every span and counter hook records into.
pub fn global() -> &'static Registry {
    &GLOBAL
}

/// Adds to a counter in the global registry (convenience).
pub fn add(name: &'static str, n: u64) {
    GLOBAL.add(name, n);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_declare_is_zero() {
        let r = Registry::new();
        r.add("x", 2);
        r.add("x", 3);
        r.declare("y");
        assert_eq!(r.counter("x"), 5);
        assert_eq!(r.counter("y"), 0);
        assert_eq!(r.counter("never"), 0);
        let snap = r.snapshot();
        assert_eq!(snap.counters.get("x"), Some(&5));
        assert_eq!(snap.counters.get("y"), Some(&0));
    }

    #[test]
    fn durations_land_in_histograms() {
        let r = Registry::new();
        r.record("stage.a", Duration::from_nanos(100));
        r.record("stage.a", Duration::from_nanos(200));
        let snap = r.snapshot();
        let h = snap.stages.get("stage.a").expect("histogram");
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 300);
        r.reset();
        assert!(r.snapshot().stages.is_empty());
    }

    #[test]
    fn concurrent_adds_sum_exactly() {
        let r = std::sync::Arc::new(Registry::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let r = &r;
                s.spawn(move || {
                    for _ in 0..1000 {
                        r.add("n", 1);
                    }
                });
            }
        });
        assert_eq!(r.counter("n"), 8000);
    }
}
