//! An offline, dependency-free stand-in for the subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmarking API this
//! workspace uses.
//!
//! The build environment has no network access, so the real crate cannot
//! be resolved. This crate keeps `cargo bench` working: it measures each
//! benchmark with a short warm-up followed by a timed batch sized to a
//! ~200 ms budget, and prints mean per-iteration time plus the declared
//! throughput. No statistics, plots, or baselines — just honest numbers.

use std::time::{Duration, Instant};

/// Per-iteration time budget control (whole-benchmark wall budget).
const TARGET_SAMPLE: Duration = Duration::from_millis(200);

/// An opaque value sink; re-exported for API compatibility.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units for reporting throughput alongside time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many items per iteration.
    Elements(u64),
}

/// How `iter_batched` amortizes setup; only a hint here.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-run setup for every routine call.
    PerIteration,
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A named group sharing a throughput declaration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work performed per iteration, for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Measures one benchmark function.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { per_iter: None };
        f(&mut bencher);
        let per_iter = bencher
            .per_iter
            .expect("benchmark closure must call Bencher::iter or iter_batched");
        let mut line = format!(
            "{}/{:<28} time: {:>12} /iter",
            self.name,
            id,
            fmt_duration(per_iter)
        );
        if let Some(tp) = self.throughput {
            let secs = per_iter.as_secs_f64();
            if secs > 0.0 {
                match tp {
                    Throughput::Bytes(n) => {
                        line.push_str(&format!("   thrpt: {}", fmt_bytes_rate(n as f64 / secs)));
                    }
                    Throughput::Elements(n) => {
                        line.push_str(&format!("   thrpt: {:.0} elem/s", n as f64 / secs));
                    }
                }
            }
        }
        println!("{line}");
        self
    }

    /// Ends the group (printing happened eagerly).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    per_iter: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, amortized over a batch sized to ~200 ms.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up and pilot measurement.
        let pilot_start = Instant::now();
        black_box(routine());
        let pilot = pilot_start.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_SAMPLE.as_nanos() / pilot.as_nanos()).clamp(1, 1_000_000) as u32;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.per_iter = Some(start.elapsed() / iters);
    }

    /// Times `routine` over inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Pilot.
        let input = setup();
        let pilot_start = Instant::now();
        black_box(routine(input));
        let pilot = pilot_start.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_SAMPLE.as_nanos() / pilot.as_nanos()).clamp(1, 100_000) as u32;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.per_iter = Some(total / iters);
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn fmt_bytes_rate(bytes_per_sec: f64) -> String {
    if bytes_per_sec >= 1e9 {
        format!("{:.2} GB/s", bytes_per_sec / 1e9)
    } else if bytes_per_sec >= 1e6 {
        format!("{:.2} MB/s", bytes_per_sec / 1e6)
    } else {
        format!("{:.1} KB/s", bytes_per_sec / 1e3)
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes flags like `--bench`; this harness takes none.
            $($group();)+
        }
    };
}
