//! The deterministic case runner behind the `proptest!` macro.

/// Runner configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running exactly `cases` cases (ignores `PROPTEST_CASES`).
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The input was rejected (filter miss or `prop_assume!` failure);
    /// the case is retried with fresh input and does not count.
    Reject(String),
    /// The property is false for this input.
    Fail(String),
}

impl TestCaseError {
    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }

    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(message.into())
    }
}

/// SplitMix64 — small, fast, and plenty for test-input generation.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs one property `config.cases` times with deterministic seeds.
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
}

impl TestRunner {
    /// A runner for the named property.
    pub fn new(config: ProptestConfig, name: &'static str) -> TestRunner {
        TestRunner { config, name }
    }

    /// Drives the property. Panics on the first failing case, reporting
    /// the case seed so the run can be reproduced.
    pub fn run<F>(&mut self, mut case: F)
    where
        F: FnMut(&mut Rng) -> Result<(), TestCaseError>,
    {
        let perturb = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0u64);
        let base = fnv1a(self.name.as_bytes()) ^ perturb;
        let max_rejects = 4096 + u64::from(self.config.cases) * 16;
        let mut passed = 0u32;
        let mut rejected = 0u64;
        let mut attempt = 0u64;
        while passed < self.config.cases {
            let seed = base.wrapping_add(attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            attempt += 1;
            let mut rng = Rng::new(seed);
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "proptest: property {} rejected {} inputs before reaching {} cases; \
                             strategy filters are too strict",
                            self.name, rejected, self.config.cases
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest: property {} failed at case {} (seed {seed:#018x}, \
                         set PROPTEST_SEED to vary inputs):\n{msg}",
                        self.name, passed
                    );
                }
            }
        }
    }
}
