//! Implementation fingerprinting (§5, §6.1).
//!
//! tcpanaly "can automatically run all known implementations against a
//! given trace, sorting them into close, imperfect, and clearly-incorrect
//! fits". The sort key comes straight from sender analysis: a candidate
//! whose replay produces *window violations* or *unexplained
//! retransmissions* clearly is not the traced implementation; one whose
//! liberations are matched but sluggishly (large response delays, lulls)
//! is an imperfect fit; a candidate that explains every packet promptly
//! is a close fit.

use crate::sender::{analyze_sender, SenderAnalysis};
use tcpa_tcpsim::config::TcpConfig;
use tcpa_tcpsim::profiles::all_profiles;
use tcpa_trace::{Connection, Duration};

/// How well a candidate implementation explains a trace (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FitClass {
    /// Every packet explained, small response delays.
    Close,
    /// Explained, but with suspiciously large delays or lulls.
    Imperfect,
    /// Window violations or unexplained retransmissions.
    ClearlyIncorrect,
}

impl core::fmt::Display for FitClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FitClass::Close => write!(f, "close"),
            FitClass::Imperfect => write!(f, "imperfect"),
            FitClass::ClearlyIncorrect => write!(f, "clearly incorrect"),
        }
    }
}

/// Response delays under this (90th percentile) qualify as prompt. A real
/// endpoint answers a liberation within its processing delay plus one LAN
/// serialization — a handful of milliseconds; tens of milliseconds still
/// plausibly reflect host scheduling noise.
const CLOSE_P90: Duration = Duration::from_millis(30);

/// One candidate's score against a trace.
#[derive(Debug, Clone)]
pub struct FingerprintResult {
    /// Candidate implementation name.
    pub name: &'static str,
    /// Fit classification.
    pub fit: FitClass,
    /// The full sender analysis behind the classification.
    pub analysis: SenderAnalysis,
}

/// Classifies one analysis into a fit class.
pub fn classify(analysis: &SenderAnalysis) -> FitClass {
    if analysis.hard_issues() > 0 {
        return FitClass::ClearlyIncorrect;
    }
    let mut delays = analysis.response_delays.clone();
    let prompt = match delays.percentile(90.0) {
        Some(p90) => p90 <= CLOSE_P90,
        None => true, // nothing to measure: vacuously prompt
    };
    // Source quenches are rare (the paper found 91 in 20,000 traces); a
    // candidate that needs *repeated* unseen quenches to explain a trace
    // is really a candidate whose window model runs persistently ahead of
    // the sender — an imperfect fit, not a close one.
    if prompt && analysis.lulls() == 0 && analysis.inferred_quenches.len() <= 1 {
        FitClass::Close
    } else {
        FitClass::Imperfect
    }
}

/// Runs one candidate against a connection.
pub fn fingerprint_one(conn: &Connection, cfg: &TcpConfig) -> Option<FingerprintResult> {
    // `detail.*` spans are sub-stage detail nested inside
    // `stage.fingerprint`; they are excluded from stage-coverage sums so
    // the replay time is not double-counted.
    let analysis = tcpa_obs::time("detail.sender_replay", || analyze_sender(conn, cfg))?;
    Some(FingerprintResult {
        name: cfg.name,
        fit: classify(&analysis),
        analysis,
    })
}

/// Runs every known profile against a connection and sorts the results:
/// close fits first (by mean response delay), then imperfect, then
/// clearly incorrect (by number of hard issues).
pub fn fingerprint(conn: &Connection) -> Vec<FingerprintResult> {
    let mut results: Vec<FingerprintResult> = all_profiles()
        .iter()
        .filter_map(|cfg| fingerprint_one(conn, cfg))
        .collect();
    results.sort_by(|a, b| {
        a.fit.cmp(&b.fit).then_with(|| match a.fit {
            FitClass::ClearlyIncorrect => a.analysis.hard_issues().cmp(&b.analysis.hard_issues()),
            _ => {
                let ma = a.analysis.response_delays.mean().unwrap_or(Duration::ZERO);
                let mb = b.analysis.response_delays.mean().unwrap_or(Duration::ZERO);
                ma.cmp(&mb)
            }
        })
    });
    results
}

/// Names of the candidates classified close.
pub fn close_fits(results: &[FingerprintResult]) -> Vec<&'static str> {
    results
        .iter()
        .filter(|r| r.fit == FitClass::Close)
        .map(|r| r.name)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sender::SenderIssueKind;

    fn dummy_analysis(hard: usize, lulls: usize, p90_ms: i64) -> SenderAnalysis {
        let mut response_delays = tcpa_trace::Summary::new();
        for _ in 0..10 {
            response_delays.add(Duration::from_millis(p90_ms));
        }
        let mut issues = Vec::new();
        for _ in 0..hard {
            issues.push(crate::sender::SenderIssue {
                kind: SenderIssueKind::WindowViolation,
                index: 0,
                time: tcpa_trace::Time::ZERO,
                detail: String::new(),
            });
        }
        for _ in 0..lulls {
            issues.push(crate::sender::SenderIssue {
                kind: SenderIssueKind::Lull,
                index: 0,
                time: tcpa_trace::Time::ZERO,
                detail: String::new(),
            });
        }
        SenderAnalysis {
            config_name: "test",
            response_delays,
            issues,
            reseq_cured_violations: 0,
            inferred_sender_window: None,
            inferred_quenches: vec![],
            zero_window_probes: 0,
            data_packets: 10,
            retransmissions: 0,
            retx_causes: vec![],
            cwnd_mss: 512,
        }
    }

    #[test]
    fn classification_boundaries() {
        assert_eq!(classify(&dummy_analysis(0, 0, 2)), FitClass::Close);
        assert_eq!(classify(&dummy_analysis(0, 0, 100)), FitClass::Imperfect);
        assert_eq!(classify(&dummy_analysis(0, 1, 2)), FitClass::Imperfect);
        assert_eq!(
            classify(&dummy_analysis(1, 0, 2)),
            FitClass::ClearlyIncorrect
        );
    }

    #[test]
    fn fit_class_orders_close_first() {
        assert!(FitClass::Close < FitClass::Imperfect);
        assert!(FitClass::Imperfect < FitClass::ClearlyIncorrect);
    }
}

/// Receiver-side consistency of one candidate against a trace.
///
/// Sender traces cannot separate implementations that differ only in
/// acking policy (Solaris 2.3 vs 2.4 is exactly such a pair, §8.6);
/// receiver-side evidence — the §9.1 policy signature, stretch-ack rate,
/// and gratuitous acks — closes that gap.
#[derive(Debug, Clone)]
pub struct ReceiverFit {
    /// Candidate implementation name.
    pub name: &'static str,
    /// `true` when nothing in the receiver analysis contradicts the
    /// candidate's receiver configuration.
    pub consistent: bool,
    /// Human-readable contradictions, empty when consistent.
    pub contradictions: Vec<String>,
}

/// Checks one receiver analysis against one candidate's receiver config.
pub fn receiver_fit(analysis: &crate::receiver::ReceiverAnalysis, cfg: &TcpConfig) -> ReceiverFit {
    use crate::receiver::{AckClass, PolicyGuess};
    use tcpa_tcpsim::config::AckPolicy;

    let mut contradictions = Vec::new();

    // Policy kind (§9.1). `Unknown` never contradicts — it means the
    // trace lacked the evidence, not that the candidate is wrong.
    match (analysis.policy, cfg.ack_policy) {
        (PolicyGuess::Unknown, _) => {}
        (PolicyGuess::Heartbeat { period_ms }, AckPolicy::Heartbeat { interval }) => {
            let expect = interval.as_millis_f64();
            if !(0.5..=1.6).contains(&(period_ms as f64 / expect)) {
                contradictions.push(format!(
                    "heartbeat period ≈{period_ms} ms vs configured {expect:.0} ms"
                ));
            }
        }
        (PolicyGuess::IntervalTimer { delay_ms }, AckPolicy::PerPacketTimer { delay }) => {
            let expect = delay.as_millis_f64();
            if !(0.5..=1.6).contains(&(delay_ms as f64 / expect)) {
                contradictions.push(format!(
                    "interval timer ≈{delay_ms} ms vs configured {expect:.0} ms"
                ));
            }
        }
        (PolicyGuess::EveryPacket, AckPolicy::EveryPacket) => {}
        // Solaris's initial ack-every-packet phase can read as EveryPacket
        // on short traces; only call a mismatch when the candidate has no
        // immediate-ack behavior at all.
        (PolicyGuess::EveryPacket, AckPolicy::PerPacketTimer { .. })
            if cfg.initial_ack_every_packet > 0 => {}
        (got, want) => {
            contradictions.push(format!("policy {got:?} vs configured {want:?}"));
        }
    }

    // Gratuitous acks (§8.6: the Solaris 2.3 bug fires every 32 packets).
    let gratuitous = analysis.count(AckClass::Gratuitous);
    let counted = analysis.acks.len();
    if cfg.gratuitous_ack_bug && counted >= 48 && gratuitous == 0 {
        contradictions.push("configured acking bug produced no gratuitous acks".into());
    }
    if !cfg.gratuitous_ack_bug && gratuitous > 0 {
        contradictions.push(format!("{gratuitous} gratuitous acks but no acking bug"));
    }

    // Stretch acks (§9.1): an every-two-segments receiver produces few;
    // a configured stretch-acker produces many.
    let stretch = analysis.count(AckClass::Stretch);
    let normalish = stretch + analysis.count(AckClass::Normal) + analysis.count(AckClass::Delayed);
    if cfg.ack_every_n > 2 && normalish >= 16 && stretch * 2 < normalish {
        contradictions.push(format!(
            "configured stretch acking (every {}) but only {stretch}/{normalish} stretch acks",
            cfg.ack_every_n
        ));
    }
    if cfg.ack_every_n <= 2 && normalish >= 16 && stretch * 3 > normalish {
        contradictions.push(format!(
            "{stretch}/{normalish} stretch acks from an every-two-segments receiver"
        ));
    }

    ReceiverFit {
        name: cfg.name,
        consistent: contradictions.is_empty(),
        contradictions,
    }
}

/// Runs every known profile's receiver side against a receiver-vantage
/// connection; consistent candidates first.
pub fn fingerprint_receiver(conn: &Connection) -> Vec<ReceiverFit> {
    let Some(analysis) = crate::receiver::analyze_receiver(conn) else {
        return Vec::new();
    };
    let mut fits: Vec<ReceiverFit> = all_profiles()
        .iter()
        .map(|cfg| receiver_fit(&analysis, cfg))
        .collect();
    fits.sort_by_key(|f| (!f.consistent, f.contradictions.len()));
    fits
}
