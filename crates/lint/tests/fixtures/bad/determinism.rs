// Bad: all three determinism hazards.
use std::collections::HashMap;

fn tally(keys: &[u32]) -> Vec<(u32, usize)> {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for k in keys {
        *counts.entry(*k).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}

fn stamp() -> std::time::Instant {
    Instant::now()
}

fn ambient() -> Option<String> {
    std::env::var("TCPA_MODE").ok()
}
