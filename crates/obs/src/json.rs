//! A minimal JSON reader/writer (no dependencies, offline CI).
//!
//! Big enough for the exposition layer's needs — escaping on the write
//! side, a strict recursive-descent parser on the read side for schema
//! validation and for stripping the nondeterministic `wall_clock`
//! subtree in tests. Numbers keep their raw source text so a
//! parse→serialize round trip is byte-preserving for them.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, kept as its raw source token.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parses a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(value)
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value's array elements.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value's object members.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// A copy of this object without the top-level member `key` (returns
    /// self unchanged for non-objects).
    pub fn without_key(&self, key: &str) -> Value {
        match self {
            Value::Obj(members) => {
                Value::Obj(members.iter().filter(|(k, _)| k != key).cloned().collect())
            }
            other => other.clone(),
        }
    }

    /// Serializes with 2-space indentation and source member order.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(raw) => out.push_str(raw),
            Value::Str(s) => out.push_str(&escape(s)),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\n{}", "  ".repeat(depth + 1));
                    item.write(out, depth + 1);
                }
                let _ = write!(out, "\n{}]", "  ".repeat(depth));
            }
            Value::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\n{}{}: ", "  ".repeat(depth + 1), escape(k));
                    v.write(out, depth + 1);
                }
                let _ = write!(out, "\n{}}}", "  ".repeat(depth));
            }
        }
    }
}

/// Escapes a string into a quoted JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.value(depth + 1)?;
                    members.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(members));
                        }
                        _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(format!("bad number at offset {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        // Validate it parses as a float so `as_f64` cannot fail later.
        raw.parse::<f64>()
            .map_err(|_| format!("bad number {raw:?} at offset {start}"))?;
        Ok(Value::Num(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            // Surrogates are replaced, not paired: the
                            // writer never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-utf8 string".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

/// Builds an object member list from a map of counters (write-side
/// convenience for deterministic, sorted exposition).
pub fn counters_object(counters: &BTreeMap<&'static str, u64>) -> Value {
    Value::Obj(
        counters
            .iter()
            .map(|(k, v)| (k.to_string(), Value::Num(v.to_string())))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_reserializes() {
        let text = r#"{"a": 1, "b": [true, null, "x\ny"], "c": {"d": 2.5e3}}"#;
        let v = Value::parse(text).expect("parse");
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert_eq!(
            v.get("c").and_then(|c| c.get("d")).and_then(Value::as_f64),
            Some(2500.0)
        );
        let round = Value::parse(&v.to_json()).expect("reparse");
        assert_eq!(v, round);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("123 456").is_err());
        assert!(Value::parse("\"unterminated").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}f — π";
        let quoted = escape(nasty);
        let v = Value::parse(&quoted).expect("parse escaped");
        assert_eq!(v.as_str(), Some(nasty));
    }

    #[test]
    fn without_key_drops_only_that_member() {
        let v = Value::parse(r#"{"keep": 1, "drop": 2}"#).unwrap();
        let stripped = v.without_key("drop");
        assert!(stripped.get("keep").is_some());
        assert!(stripped.get("drop").is_none());
    }

    #[test]
    fn numbers_keep_raw_text() {
        let v = Value::parse("[1.50, 2e2, -0.25]").unwrap();
        assert_eq!(v.to_json(), "[\n  1.50,\n  2e2,\n  -0.25\n]\n");
    }
}
