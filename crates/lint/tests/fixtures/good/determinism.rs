// Good: ordered maps, no ambient clock or environment reads.
use std::collections::BTreeMap;

fn tally(keys: &[u32]) -> Vec<(u32, usize)> {
    let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
    for k in keys {
        *counts.entry(*k).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}
