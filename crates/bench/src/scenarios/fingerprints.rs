//! §5/§6.1 — sorting candidate implementations into close / imperfect /
//! clearly-incorrect fits: the confusion matrix.

use crate::{Section, TextTable};
use tcpa_netsim::LossModel;
use tcpa_tcpsim::harness::{run_transfer, PathSpec};
use tcpa_tcpsim::profiles;
use tcpa_trace::{Connection, Duration};
use tcpanaly::fingerprint::{fingerprint_one, FitClass};

/// The behaviorally-distant subset used for the matrix: each pair differs
/// in a major mechanism, so a trace from one should reject the others.
fn matrix_profiles() -> Vec<tcpa_tcpsim::TcpConfig> {
    vec![
        profiles::reno(),
        profiles::tahoe(),
        profiles::linux_1_0(),
        profiles::solaris_2_4(),
        profiles::trumpet_winsock(),
    ]
}

/// Generates one discriminating trace per generator: a path with enough
/// stress (loss + moderate RTT) that the major mechanisms all express.
fn stress_path() -> PathSpec {
    let mut path = PathSpec::default();
    path.one_way_delay = Duration::from_millis(150);
    path.loss_data = LossModel::Periodic(25);
    path.queue_cap = 12;
    path
}

/// Runs the matrix.
pub fn confusion_matrix() -> Section {
    let candidates = matrix_profiles();
    let mut table = TextTable::new(&[
        "trace \\ model",
        "Reno",
        "Tahoe",
        "Linux1.0",
        "Sol2.4",
        "Trumpet",
    ]);
    let mut diagonal_close = 0usize;
    let mut off_diag_incorrect = 0usize;
    let mut off_diag_total = 0usize;

    for gen in &candidates {
        let out = run_transfer(
            gen.clone(),
            profiles::reno(),
            &stress_path(),
            100 * 1024,
            700,
        );
        let conn = Connection::split(&out.sender_trace()).remove(0);
        let mut row = vec![gen.name.to_string()];
        for (j, cand) in candidates.iter().enumerate() {
            let fit = fingerprint_one(&conn, cand).map(|r| r.fit);
            let mark = match fit {
                Some(FitClass::Close) => "close",
                Some(FitClass::Imperfect) => "imperf",
                Some(FitClass::ClearlyIncorrect) => "WRONG",
                None => "n/a",
            };
            let on_diag = cand.name == gen.name;
            if on_diag && fit == Some(FitClass::Close) {
                diagonal_close += 1;
            }
            if !on_diag {
                off_diag_total += 1;
                if fit == Some(FitClass::ClearlyIncorrect) {
                    off_diag_incorrect += 1;
                }
            }
            let _ = j;
            row.push(mark.to_string());
        }
        table.row(row);
    }

    let n = candidates.len();
    Section {
        id: "§6.1".into(),
        title: "Implementation fingerprinting (close / imperfect / clearly incorrect)".into(),
        paper_claim: "tcpanaly runs all known implementations against a trace and \
                      sorts them into close, imperfect and clearly-incorrect fits \
                      using response-time statistics and window violations."
            .into(),
        params: "One 100 KB transfer per generator over a stressed path (300 ms RTT, \
                 1-in-25 loss); every candidate replayed against every trace"
            .into(),
        body: table.render(),
        measured: vec![
            (
                "diagonal close fits".into(),
                format!("{diagonal_close}/{n}"),
            ),
            (
                "off-diagonal clearly-incorrect".into(),
                format!("{off_diag_incorrect}/{off_diag_total}"),
            ),
        ],
        verdict: if diagonal_close == n && off_diag_incorrect as f64 >= 0.7 * off_diag_total as f64
        {
            "REPRODUCED: every generator close-fits its own trace; behaviorally-distant candidates overwhelmingly rejected.".into()
        } else {
            format!(
                "PARTIAL: diagonal {diagonal_close}/{n}, off-diagonal rejections \
                 {off_diag_incorrect}/{off_diag_total}"
            )
        },
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn matrix_reproduces() {
        let s = super::confusion_matrix();
        assert!(
            s.verdict.starts_with("REPRODUCED"),
            "{}\n{}",
            s.verdict,
            s.body
        );
    }
}
