//! Test-region detection.
//!
//! Every rule exempts test code: `#[cfg(test)]` modules, `#[test]` /
//! `#[should_panic]` functions, and whole files under `tests/`,
//! `benches/`, or `examples/`. Tests are *supposed* to unwrap and panic —
//! a failed assertion is the mechanism, not a contract violation.
//!
//! Detection is token-based: find an attribute whose argument tokens
//! mention `test` (and not `not`, so `#[cfg(not(test))]` stays
//! production code), then brace-match the item that follows. The matched
//! line range is exempt.

use crate::lexer::Tok;

/// Line ranges (1-based, inclusive) covered by test-only items.
#[derive(Debug, Default)]
pub struct TestRegions {
    ranges: Vec<(u32, u32)>,
}

impl TestRegions {
    /// `true` when `line` falls inside any test item.
    pub fn contains(&self, line: u32) -> bool {
        self.ranges.iter().any(|&(lo, hi)| lo <= line && line <= hi)
    }
}

/// `true` for paths that are test scope in their entirety.
pub fn path_is_test(path: &str) -> bool {
    path.split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples")
        || path.ends_with("build.rs")
}

/// Scans the token stream for test attributes and brace-matches the item
/// each one introduces.
pub fn detect(tokens: &[Tok]) -> TestRegions {
    let mut regions = TestRegions::default();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let Some(attr_end) = matching_close(tokens, i + 1, '[', ']') else {
            break; // truncated file: nothing more to find
        };
        let args = &tokens[i + 2..attr_end];
        let mentions_test = args
            .iter()
            .any(|t| t.is_ident("test") || t.is_ident("should_panic"));
        let negated = args.iter().any(|t| t.is_ident("not"));
        if !mentions_test || negated {
            i = attr_end + 1;
            continue;
        }
        let start_line = tokens[i].line;
        // Skip any further attributes stacked on the same item.
        let mut k = attr_end + 1;
        while k < tokens.len()
            && tokens[k].is_punct('#')
            && tokens.get(k + 1).is_some_and(|t| t.is_punct('['))
        {
            match matching_close(tokens, k + 1, '[', ']') {
                Some(end) => k = end + 1,
                None => break,
            }
        }
        // Find the item body: the first `{` at bracket depth zero, or a
        // bare `;` (e.g. `mod tests;`) which ends the item immediately.
        let mut depth = 0i32;
        let mut body_open = None;
        let mut end_line = tokens.get(k).map_or(start_line, |t| t.line);
        while k < tokens.len() {
            let t = &tokens[k];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if depth == 0 && t.is_punct(';') {
                end_line = t.line;
                break;
            } else if depth == 0 && t.is_punct('{') {
                body_open = Some(k);
                break;
            }
            k += 1;
        }
        if let Some(open) = body_open {
            match matching_close(tokens, open, '{', '}') {
                Some(close) => {
                    end_line = tokens[close].line;
                    k = close;
                }
                None => {
                    // Truncated inside the body: exempt to end of file.
                    end_line = tokens.last().map_or(start_line, |t| t.line);
                    k = tokens.len();
                }
            }
        }
        regions.ranges.push((start_line, end_line));
        i = k.max(attr_end) + 1;
    }
    regions
}

/// Index of the punct closing the bracket that opens at `open_idx`.
fn matching_close(tokens: &[Tok], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn regions(src: &str) -> TestRegions {
        detect(&lex(src).tokens)
    }

    #[test]
    fn cfg_test_module_is_exempt() {
        let src =
            "fn prod() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n";
        let r = regions(src);
        assert!(!r.contains(1));
        assert!(r.contains(2));
        assert!(r.contains(4));
        assert!(r.contains(5));
    }

    #[test]
    fn cfg_not_test_is_production() {
        let src = "#[cfg(not(test))]\nfn prod() { x.unwrap(); }\n";
        assert!(!regions(src).contains(2));
    }

    #[test]
    fn stacked_attributes_cover_the_item() {
        let src = "#[test]\n#[should_panic]\nfn t() {\n    boom();\n}\nfn prod() {}\n";
        let r = regions(src);
        assert!(r.contains(4));
        assert!(!r.contains(6));
    }

    #[test]
    fn signature_brackets_do_not_confuse_body_search() {
        let src = "#[test]\nfn t(a: [u8; 4]) {\n    a.unwrap();\n}\nfn prod() {}\n";
        let r = regions(src);
        assert!(r.contains(3));
        assert!(!r.contains(5));
    }

    #[test]
    fn external_mod_declaration_ends_at_semicolon() {
        let src = "#[cfg(test)]\nmod tests;\nfn prod() {}\n";
        let r = regions(src);
        assert!(r.contains(2));
        assert!(!r.contains(3));
    }

    #[test]
    fn test_scope_paths() {
        assert!(path_is_test("crates/core/tests/contract.rs"));
        assert!(path_is_test("crates/bench/benches/smoke.rs"));
        assert!(path_is_test("build.rs"));
        assert!(!path_is_test("crates/core/src/receiver.rs"));
    }
}
