//! Criterion benchmarks: the analyzer must scale to the paper's corpus
//! (~40,000 traces), so measure packets/second through each stage —
//! simulation, calibration, sender replay, receiver analysis, and the
//! full all-profiles fingerprint sweep.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use tcpa_filter::{apply, FilterConfig};
use tcpa_tcpsim::harness::{run_transfer, PathSpec};
use tcpa_tcpsim::profiles;
use tcpa_trace::{Connection, Trace};
use tcpanaly::calibrate::Calibrator;
use tcpanaly::fingerprint::{fingerprint, fingerprint_one};
use tcpanaly::receiver::analyze_receiver;
use tcpanaly::sender::analyze_sender;

fn reference_traces() -> (Trace, Trace) {
    let out = run_transfer(
        profiles::reno(),
        profiles::reno(),
        &PathSpec::default(),
        100 * 1024,
        4242,
    );
    (out.sender_trace(), out.receiver_trace())
}

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation");
    g.throughput(Throughput::Bytes(100 * 1024));
    g.bench_function("bulk_transfer_100k", |b| {
        b.iter(|| {
            run_transfer(
                profiles::reno(),
                profiles::reno(),
                &PathSpec::default(),
                100 * 1024,
                std::hint::black_box(4242),
            )
        })
    });
    g.finish();
}

fn bench_calibration(c: &mut Criterion) {
    let (sender_trace, _) = reference_traces();
    let n = sender_trace.len() as u64;
    let out = run_transfer(
        profiles::reno(),
        profiles::reno(),
        &PathSpec::default(),
        100 * 1024,
        4242,
    );
    let (dup_trace, _) = apply(&out.sender_tap, &FilterConfig::irix_duplicating(), 1);

    let mut g = c.benchmark_group("calibration");
    g.throughput(Throughput::Elements(n));
    g.bench_function("clean_trace", |b| {
        let cal = Calibrator::at_sender();
        b.iter(|| cal.calibrate(std::hint::black_box(&sender_trace)))
    });
    g.bench_function("duplicated_trace", |b| {
        let cal = Calibrator::at_sender();
        b.iter(|| cal.calibrate(std::hint::black_box(&dup_trace)))
    });
    g.finish();
}

fn bench_sender_analysis(c: &mut Criterion) {
    let (sender_trace, _) = reference_traces();
    let n = sender_trace.len() as u64;
    let conn = Connection::split(&sender_trace).remove(0);
    let cfg = profiles::reno();

    let mut g = c.benchmark_group("sender_analysis");
    g.throughput(Throughput::Elements(n));
    g.bench_function("replay_one_profile", |b| {
        b.iter(|| analyze_sender(std::hint::black_box(&conn), &cfg))
    });
    g.bench_function("fingerprint_one", |b| {
        b.iter(|| fingerprint_one(std::hint::black_box(&conn), &cfg))
    });
    g.bench_function("fingerprint_all_profiles", |b| {
        b.iter(|| fingerprint(std::hint::black_box(&conn)))
    });
    g.finish();
}

fn bench_receiver_analysis(c: &mut Criterion) {
    let (_, receiver_trace) = reference_traces();
    let n = receiver_trace.len() as u64;
    let conn = Connection::split(&receiver_trace).remove(0);

    let mut g = c.benchmark_group("receiver_analysis");
    g.throughput(Throughput::Elements(n));
    g.bench_function("ack_obligations", |b| {
        b.iter(|| analyze_receiver(std::hint::black_box(&conn)))
    });
    g.finish();
}

fn bench_connection_split(c: &mut Criterion) {
    let (sender_trace, _) = reference_traces();
    let n = sender_trace.len() as u64;
    let mut g = c.benchmark_group("trace_model");
    g.throughput(Throughput::Elements(n));
    g.bench_function("connection_split", |b| {
        b.iter_batched(
            || sender_trace.clone(),
            |t| Connection::split(std::hint::black_box(&t)),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_simulation,
    bench_calibration,
    bench_sender_analysis,
    bench_receiver_analysis,
    bench_connection_split
);
criterion_main!(benches);
