// Good: checked conversions that surface the bad length, and widening
// casts (never flagged).
fn decode(len_field: u64, small: u16) -> Result<(usize, u64), String> {
    let len = usize::try_from(len_field).map_err(|_| format!("oversized: {len_field}"))?;
    let widened = small as u64;
    Ok((len, widened))
}
