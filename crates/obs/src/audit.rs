//! Per-trace audit trails — the pipeline's "show your work" record.
//!
//! The paper's tcpanaly justifies every verdict with the evidence behind
//! it; at corpus scale that record must survive the run. When auditing
//! is enabled, each analyzed trace produces one JSON event log (schema
//! `tcpa-audit/v1`) listing, in order, every stage that ran (with its
//! duration), every retry and error, and the final verdict.
//!
//! The active trail lives in a thread-local so instrumentation deep in
//! the analyzer ([`crate::span`], ad-hoc [`event`] calls) needs no
//! plumbing: the corpus worker [`begin`]s a trail, the analysis runs,
//! and the worker [`take`]s the finished trail and writes it out. Work
//! delegated to another thread (the corpus watchdog) begins its own
//! trail there and the parent [`AuditTrail::absorb`]s it.

use crate::json;
use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Cap on events kept per trail; a pathological trace must not turn its
/// audit record into a memory leak. Overflow is counted, not silent.
pub const MAX_EVENTS: usize = 4096;

/// What kind of thing an audit event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A pipeline stage completed (duration attached).
    Stage,
    /// A transient failure was retried.
    Retry,
    /// A failure (I/O, malformed bytes, timeout, panic).
    Error,
    /// A conclusion: calibration findings, best fits, outcome.
    Verdict,
    /// Anything else worth the record (salvage ledgers, notes).
    Info,
}

impl EventKind {
    /// Stable lowercase name used in the JSON schema.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Stage => "stage",
            EventKind::Retry => "retry",
            EventKind::Error => "error",
            EventKind::Verdict => "verdict",
            EventKind::Info => "info",
        }
    }
}

/// One entry in a trace's audit trail.
#[derive(Debug, Clone)]
pub struct AuditEvent {
    /// Event kind.
    pub kind: EventKind,
    /// Stage or subsystem name (`stage.fingerprint`, `load`, …).
    pub name: String,
    /// Duration in nanoseconds, for `Stage` events.
    pub dur_ns: Option<u64>,
    /// Human-readable detail (may be empty).
    pub detail: String,
}

/// The ordered event log of one trace's trip through the pipeline.
#[derive(Debug, Clone)]
pub struct AuditTrail {
    /// The corpus item's label (file path or synthetic name).
    pub trace_id: String,
    /// The item's 0-based input-order index.
    pub index: u64,
    /// Events in the order they happened.
    pub events: Vec<AuditEvent>,
    /// Events discarded beyond [`MAX_EVENTS`].
    pub dropped: u64,
    /// Final outcome name (`analyzed`, `salvaged`, `failed.io`, …);
    /// empty until [`take`] seals the trail.
    pub outcome: String,
    /// Wall-clock nanoseconds from [`begin`] to [`take`].
    pub total_ns: u64,
    started: Instant,
}

impl AuditTrail {
    fn new(trace_id: String, index: u64) -> AuditTrail {
        AuditTrail {
            trace_id,
            index,
            events: Vec::new(),
            dropped: 0,
            outcome: String::new(),
            total_ns: 0,
            started: Instant::now(),
        }
    }

    fn push(&mut self, event: AuditEvent) {
        if self.events.len() >= MAX_EVENTS {
            self.dropped += 1;
        } else {
            self.events.push(event);
        }
    }

    /// Appends every event of a trail produced on another thread (the
    /// corpus watchdog) to this one.
    pub fn absorb(&mut self, inner: AuditTrail) {
        for event in inner.events {
            self.push(event);
        }
        self.dropped += inner.dropped;
    }

    /// Renders the trail as `tcpa-audit/v1` JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"tcpa-audit/v1\",\n");
        out.push_str(&format!("  \"trace\": {},\n", json::escape(&self.trace_id)));
        out.push_str(&format!("  \"index\": {},\n", self.index));
        out.push_str(&format!(
            "  \"outcome\": {},\n",
            json::escape(&self.outcome)
        ));
        out.push_str(&format!("  \"events_dropped\": {},\n", self.dropped));
        out.push_str("  \"events\": [");
        for (seq, event) in self.events.iter().enumerate() {
            if seq > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"seq\": {seq}, "));
            out.push_str(&format!(
                "\"kind\": {}, ",
                json::escape(event.kind.as_str())
            ));
            out.push_str(&format!("\"name\": {}, ", json::escape(&event.name)));
            if let Some(ns) = event.dur_ns {
                out.push_str(&format!("\"dur_ns\": {ns}, "));
            }
            out.push_str(&format!("\"detail\": {}}}", json::escape(&event.detail)));
        }
        if !self.events.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str(&format!(
            "  \"wall_clock\": {{ \"total_ns\": {} }}\n",
            self.total_ns
        ));
        out.push_str("}\n");
        out
    }

    /// The file name this trail writes under: input index plus the
    /// trace id sanitized to a portable character set.
    pub fn file_name(&self) -> String {
        let mut slug: String = self
            .trace_id
            .chars()
            .map(|c| match c {
                'a'..='z' | 'A'..='Z' | '0'..='9' | '.' | '-' | '_' => c,
                _ => '_',
            })
            .collect();
        slug.truncate(80);
        format!("{:05}-{}.json", self.index, slug)
    }

    /// Writes the trail into `dir` (created if absent, parents
    /// included) as [`AuditTrail::file_name`], reporting the failing
    /// path and step on error.
    pub fn write_to(&self, dir: &Path) -> Result<PathBuf, crate::write::WriteError> {
        crate::write::ensure_dir(dir)?;
        let path = dir.join(self.file_name());
        crate::write::write_with_parents(&path, &self.to_json())?;
        Ok(path)
    }
}

thread_local! {
    static CURRENT: RefCell<Option<AuditTrail>> = const { RefCell::new(None) };
}

/// Opens a trail for `trace_id` on this thread, replacing (and
/// discarding) any unfinished one.
pub fn begin(trace_id: impl Into<String>, index: u64) {
    CURRENT.with(|cell| {
        *cell.borrow_mut() = Some(AuditTrail::new(trace_id.into(), index));
    });
}

/// `true` when a trail is open on this thread.
pub fn is_active() -> bool {
    CURRENT.with(|cell| cell.borrow().is_some())
}

/// Seals and returns this thread's trail, stamping the outcome and the
/// total wall-clock. Returns `None` when no trail was open.
pub fn take(outcome: &str) -> Option<AuditTrail> {
    CURRENT.with(|cell| {
        cell.borrow_mut().take().map(|mut trail| {
            trail.outcome = outcome.to_string();
            trail.total_ns = trail.started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            trail
        })
    })
}

/// Merges a trail produced on another thread (see
/// [`AuditTrail::absorb`]) into this thread's open trail; a no-op when
/// none is open.
pub fn absorb(inner: AuditTrail) {
    CURRENT.with(|cell| {
        if let Some(trail) = cell.borrow_mut().as_mut() {
            trail.absorb(inner);
        }
    });
}

/// Appends an event to this thread's trail; a no-op when none is open.
pub fn event(kind: EventKind, name: impl Into<String>, detail: impl Into<String>) {
    CURRENT.with(|cell| {
        if let Some(trail) = cell.borrow_mut().as_mut() {
            trail.push(AuditEvent {
                kind,
                name: name.into(),
                dur_ns: None,
                detail: detail.into(),
            });
        }
    });
}

/// Appends a completed-stage event (called by [`crate::Span`] on drop).
pub(crate) fn stage_event(name: &'static str, elapsed: std::time::Duration, detail: String) {
    CURRENT.with(|cell| {
        if let Some(trail) = cell.borrow_mut().as_mut() {
            trail.push(AuditEvent {
                kind: EventKind::Stage,
                name: name.to_string(),
                dur_ns: Some(elapsed.as_nanos().min(u64::MAX as u128) as u64),
                detail,
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trail_collects_spans_and_events() {
        begin("tests/a.pcap", 7);
        assert!(is_active());
        crate::time("stage.test_audit", || ());
        event(EventKind::Retry, "load", "attempt 1: interrupted");
        event(EventKind::Verdict, "outcome", "1 connection");
        let trail = take("analyzed").expect("trail");
        assert!(!is_active());
        assert_eq!(trail.trace_id, "tests/a.pcap");
        assert_eq!(trail.index, 7);
        assert_eq!(trail.outcome, "analyzed");
        assert_eq!(trail.events.len(), 3);
        assert_eq!(trail.events[0].kind, EventKind::Stage);
        assert!(trail.events[0].dur_ns.is_some());
        assert_eq!(trail.events[1].kind, EventKind::Retry);
        let json = trail.to_json();
        assert!(crate::metrics::validate_audit(&json).is_ok(), "{json}");
        assert_eq!(trail.file_name(), "00007-tests_a.pcap.json");
    }

    #[test]
    fn events_without_a_trail_are_dropped() {
        assert!(take("x").is_none());
        event(EventKind::Info, "nobody", "listening");
        assert!(!is_active());
    }

    #[test]
    fn overflow_is_counted_and_absorb_merges() {
        begin("big", 0);
        for i in 0..(MAX_EVENTS + 10) {
            event(EventKind::Info, "e", format!("{i}"));
        }
        let mut trail = take("analyzed").expect("trail");
        assert_eq!(trail.events.len(), MAX_EVENTS);
        assert_eq!(trail.dropped, 10);

        begin("inner", 0);
        event(EventKind::Error, "watchdog", "late");
        let inner = take("").expect("inner");
        trail.absorb(inner);
        assert_eq!(trail.dropped, 11, "still at cap; absorbed event dropped");
    }

    #[test]
    fn empty_trail_is_valid_json() {
        begin("empty", 3);
        let trail = take("failed.io").expect("trail");
        let json = trail.to_json();
        assert!(crate::metrics::validate_audit(&json).is_ok(), "{json}");
    }
}
