// Good: diagnostics build strings for the logger; no direct prints.
fn report(n: usize) -> String {
    let message = format!("census rows: {n}");
    message
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_print() {
        println!("test diagnostics are exempt");
    }
}
