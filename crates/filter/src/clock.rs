//! Packet-filter clock models (§3.1.4).
//!
//! A filter stamps each record with its *own* clock's reading at the
//! moment it processes the packet. The model maps true time to measured
//! time through an offset, a relative skew, and a list of step
//! adjustments (a host synchronizing its fast-running clock by setting it
//! *backwards* produces the paper's "time travel").

use tcpa_trace::{Duration, Time};

/// An affine-plus-steps clock.
#[derive(Debug, Clone, Default)]
pub struct ClockModel {
    /// Constant offset added to every reading.
    pub offset: Duration,
    /// Relative skew in parts per million (positive = this clock runs
    /// fast).
    pub skew_ppm: f64,
    /// Step adjustments: at true time `.0`, the clock jumps by `.1`
    /// (negative = set backwards). Applied to all readings at or after the
    /// step.
    pub adjustments: Vec<(Time, Duration)>,
}

impl ClockModel {
    /// A perfect clock.
    pub fn perfect() -> ClockModel {
        ClockModel::default()
    }

    /// The §3.1.4 BSDI/NetBSD pattern: the clock runs fast by `skew_ppm`
    /// and an external synchronization daemon yanks it back by `step`
    /// every `period` of true time, causing periodic backward jumps.
    pub fn fast_with_periodic_sync(
        skew_ppm: f64,
        period: Duration,
        step: Duration,
        horizon: Time,
    ) -> ClockModel {
        assert!(step.as_nanos() >= 0, "step must be given as a magnitude");
        let mut adjustments = Vec::new();
        let mut t = Time::ZERO + period;
        while t <= horizon {
            adjustments.push((t, -step));
            t += period;
        }
        ClockModel {
            offset: Duration::ZERO,
            skew_ppm,
            adjustments,
        }
    }

    /// Maps a true time to this clock's reading.
    pub fn stamp(&self, t: Time) -> Time {
        let skewed = t.as_nanos() as f64 * (1.0 + self.skew_ppm * 1e-6);
        let mut reading = skewed as i64 + self.offset.as_nanos();
        for &(at, step) in &self.adjustments {
            if t >= at {
                reading += step.as_nanos();
            }
        }
        Time(reading)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clock_is_identity() {
        let c = ClockModel::perfect();
        assert_eq!(c.stamp(Time::from_millis(1234)), Time::from_millis(1234));
    }

    #[test]
    fn offset_and_skew_apply() {
        let c = ClockModel {
            offset: Duration::from_millis(5),
            skew_ppm: 100.0, // 100 ppm fast
            adjustments: vec![],
        };
        let t = Time::from_secs(100);
        let stamped = c.stamp(t);
        // 100 s * 100 ppm = 10 ms fast, plus 5 ms offset.
        assert_eq!(stamped, Time(100_015_000_000));
    }

    #[test]
    fn backward_step_creates_time_travel() {
        let c = ClockModel {
            offset: Duration::ZERO,
            skew_ppm: 0.0,
            adjustments: vec![(Time::from_secs(10), Duration::from_millis(-50))],
        };
        let before = c.stamp(Time(9_999_999_000));
        let after = c.stamp(Time::from_secs(10));
        assert!(after < before, "reading must decrease across the step");
    }

    #[test]
    fn periodic_sync_builder_steps_back_repeatedly() {
        let c = ClockModel::fast_with_periodic_sync(
            200.0,
            Duration::from_secs(10),
            Duration::from_millis(2),
            Time::from_secs(60),
        );
        assert_eq!(c.adjustments.len(), 6);
        assert!(c.adjustments.iter().all(|&(_, d)| d.is_negative()));
        // Just after each sync the reading dips below just before it.
        let eps = Duration::from_micros(1);
        let pre = c.stamp(Time::from_secs(10) - eps);
        let post = c.stamp(Time::from_secs(10));
        assert!(post < pre);
    }
}
