//! §3 calibration experiments: drops, resequencing, time travel — and the
//! §6.2 source-quench census.

use crate::{Section, TextTable};
use tcpa_filter::{apply, ClockModel, FilterConfig};
use tcpa_netsim::LossModel;
use tcpa_tcpsim::harness::{run_transfer, run_transfer_with, Extras, PathSpec};
use tcpa_tcpsim::profiles;
use tcpa_trace::{Connection, Duration, Time};
use tcpanaly::calibrate::Calibrator;
use tcpanaly::sender::analyze_sender;

/// §3.1.1 — filter-drop detection versus genuine network drops.
pub fn drops() -> Section {
    let mut table = TextTable::new(&[
        "filter drop rate",
        "trials",
        "detected",
        "false alarms on lossy-net control",
    ]);
    let mut all_detected = true;
    let mut any_false = 0usize;
    for &rate in &[0.01f64, 0.03, 0.08] {
        let mut detected = 0;
        let trials = 5;
        for k in 0..trials {
            let out = run_transfer(
                profiles::reno(),
                profiles::reno(),
                &PathSpec::default(),
                100 * 1024,
                300 + k,
            );
            let (measured, report) = apply(&out.sender_tap, &FilterConfig::lossy(rate), 300 + k);
            if report.dropped_indices.is_empty() {
                detected += 1; // vacuous: nothing to detect
                continue;
            }
            let (_, cal) = Calibrator::at_sender().calibrate(&measured);
            if !cal.drop_evidence.is_empty() {
                detected += 1;
            }
        }
        // Control: genuine network loss, perfect filter: no evidence.
        let mut false_alarms = 0;
        for k in 0..trials {
            let mut path = PathSpec::default();
            path.loss_data = LossModel::Bernoulli(rate);
            let out = run_transfer(
                profiles::reno(),
                profiles::reno(),
                &path,
                100 * 1024,
                350 + k,
            );
            let (_, cal) = Calibrator::at_sender().calibrate(&out.sender_trace());
            if !cal.drop_evidence.is_empty() {
                false_alarms += 1;
            }
        }
        any_false += false_alarms;
        if detected < trials {
            all_detected = false;
        }
        table.row(vec![
            format!("{:.0}%", rate * 100.0),
            trials.to_string(),
            format!("{detected}/{trials}"),
            format!("{false_alarms}/{trials}"),
        ]);
    }
    Section {
        id: "§3.1.1".into(),
        title: "Packet-filter drop detection".into(),
        paper_claim: "Filters cannot be trusted to report drops; tcpanaly infers them \
                      via self-consistency checks while never confusing genuine \
                      network drops (which the TCP repairs) with filter drops."
            .into(),
        params: "Reno/Reno 100 KB transfers; user-level filter shedding 1–8% of \
                 records vs perfect filter on an equally lossy network path"
            .into(),
        body: table.render(),
        measured: vec![],
        verdict: if all_detected && any_false == 0 {
            "REPRODUCED: filter drops detected at every rate; zero false alarms on genuine network loss.".into()
        } else {
            format!("PARTIAL: all_detected={all_detected}, false alarms {any_false}")
        },
    }
}

/// §3.1.3 — Solaris filter resequencing prevalence.
pub fn resequencing() -> Section {
    let trials = 20;
    let mut flagged = 0;
    for k in 0..trials {
        let mut path = PathSpec::default();
        path.one_way_delay = Duration::from_millis(5);
        path.proc_delay = Duration::from_micros(50);
        let out = run_transfer(
            profiles::reno(),
            profiles::reno(),
            &path,
            100 * 1024,
            400 + k,
        );
        let (measured, _) = apply(
            &out.sender_tap,
            &FilterConfig::solaris_resequencing(),
            400 + k,
        );
        let (clean, cal) = Calibrator::at_sender().calibrate(&measured);
        let conn = Connection::split(&clean).remove(0);
        let reseq_model = analyze_sender(&conn, &profiles::reno())
            .map(|a| a.reseq_cured_violations)
            .unwrap_or(0);
        if !cal.resequencing.is_empty() || reseq_model > 0 {
            flagged += 1;
        }
    }
    let frac = 100.0 * flagged as f64 / trials as f64;
    Section {
        id: "§3.1.3".into(),
        title: "Filter resequencing detection".into(),
        paper_claim: "Resequencing plagues about 20% of Solaris 2.3/2.4 self-traces, \
                      scrambling cause and effect on sub-millisecond scales; tcpanaly \
                      detects it from effect-before-cause signatures."
            .into(),
        params: format!(
            "{trials} fast-path (10 ms RTT) transfers measured through the two-path \
             Solaris filter model (inbound records delayed 0.2–2.5 ms)"
        ),
        body: String::new(),
        measured: vec![(
            "traces flagged as resequenced".into(),
            format!("{flagged}/{trials} ({frac:.0}%)"),
        )],
        verdict: if flagged > 0 {
            format!(
                "REPRODUCED: a substantial fraction ({frac:.0}%) of Solaris-filter traces \
                 carry detectable resequencing (paper: ~20% of its corpus)."
            )
        } else {
            "FAILED: no resequencing detected".into()
        },
    }
}

/// §3.1.4 — time travel (backward timestamp steps).
pub fn time_travel() -> Section {
    let trials = 10;
    let mut instances = 0usize;
    let mut flagged = 0usize;
    for k in 0..trials {
        let mut path = PathSpec::default();
        path.rate_bps = 256_000;
        let out = run_transfer(
            profiles::reno(),
            profiles::reno(),
            &path,
            100 * 1024,
            500 + k,
        );
        let cfg = FilterConfig {
            clock: ClockModel::fast_with_periodic_sync(
                300.0,
                Duration::from_secs(1),
                Duration::from_millis(150),
                Time::from_secs(30),
            ),
            ..FilterConfig::default()
        };
        let (measured, _) = apply(&out.sender_tap, &cfg, 500 + k);
        let (_, cal) = Calibrator::at_sender().calibrate(&measured);
        instances += cal.time_travel.len();
        if !cal.time_travel.is_empty() {
            flagged += 1;
        }
    }
    Section {
        id: "§3.1.4".into(),
        title: "Time travel (clock set backwards)".into(),
        paper_claim: "More than 500 instances of decreasing timestamps, all on \
                      BSDI 1.1 / NetBSD 1.0 hosts whose fast clocks were \
                      periodically set backwards by synchronization."
            .into(),
        params: format!(
            "{trials} transfers (~3.5 s each) stamped by a clock running 300 ppm \
             fast and yanked back 150 ms every second"
        ),
        body: String::new(),
        measured: vec![
            (
                "traces with time travel".into(),
                format!("{flagged}/{trials}"),
            ),
            ("total instances".into(), instances.to_string()),
        ],
        verdict: if flagged == trials as usize && instances >= trials as usize {
            "REPRODUCED: every affected trace flagged, with multiple instances each.".into()
        } else {
            format!("PARTIAL: {flagged}/{trials} flagged, {instances} instances")
        },
    }
}

/// §6.2 — inferring unseen ICMP source quench.
pub fn quench() -> Section {
    let trials = 12;
    let with_quench = 4; // a minority, as in the paper (91 in 20,000)
    let mut true_pos = 0usize;
    let mut false_pos = 0usize;
    for k in 0..trials {
        let mut path = PathSpec::default();
        path.one_way_delay = Duration::from_millis(50);
        let quenched = k < with_quench;
        let extras = Extras {
            quench_at: if quenched {
                vec![Time::from_millis(600 + 37 * k as i64)]
            } else {
                vec![]
            },
            horizon: None,
            sender_pause: None,
        };
        let out = run_transfer_with(
            profiles::reno(),
            profiles::reno(),
            &path,
            100 * 1024,
            600 + k as u64,
            &extras,
        );
        let conn = Connection::split(&out.sender_trace()).remove(0);
        let a = analyze_sender(&conn, &profiles::reno()).expect("analyzable");
        if quenched && !a.inferred_quenches.is_empty() {
            true_pos += 1;
        }
        if !quenched && !a.inferred_quenches.is_empty() {
            false_pos += 1;
        }
    }
    Section {
        id: "§6.2".into(),
        title: "Source-quench inference".into(),
        paper_claim: "ICMP source quench never appears in a TCP-only trace, yet \
                      tcpanaly inferred 91 instances among 20,000 traces from \
                      slow-start-consistent gaps."
            .into(),
        params: format!(
            "{with_quench} of {trials} transfers receive one unseen quench \
             mid-connection (100 ms RTT path)"
        ),
        body: String::new(),
        measured: vec![
            (
                "quenches inferred (of injected)".into(),
                format!("{true_pos}/{with_quench}"),
            ),
            (
                "false inferences on clean transfers".into(),
                format!("{false_pos}/{}", trials - with_quench),
            ),
        ],
        verdict: if true_pos == with_quench && false_pos == 0 {
            "REPRODUCED: every unseen quench inferred, none invented.".into()
        } else {
            format!("PARTIAL: {true_pos}/{with_quench} found, {false_pos} false")
        },
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn drops_reproduces() {
        let s = super::drops();
        assert!(
            s.verdict.starts_with("REPRODUCED"),
            "{}\n{}",
            s.verdict,
            s.body
        );
    }

    #[test]
    fn resequencing_reproduces() {
        let s = super::resequencing();
        assert!(s.verdict.starts_with("REPRODUCED"), "{}", s.verdict);
    }

    #[test]
    fn time_travel_reproduces() {
        let s = super::time_travel();
        assert!(s.verdict.starts_with("REPRODUCED"), "{}", s.verdict);
    }

    #[test]
    fn quench_reproduces() {
        let s = super::quench();
        assert!(s.verdict.starts_with("REPRODUCED"), "{}", s.verdict);
    }
}
