//! RAII stage spans.
//!
//! A [`Span`] measures the wall-clock time of one pipeline stage with a
//! monotonic clock. On drop it records the duration into the global
//! registry's histogram for the stage and — when a per-trace audit trail
//! is active on this thread — appends a `stage` event to it. This is the
//! only instrumentation call sites need:
//!
//! ```
//! let result = tcpa_obs::time("stage.calibrate", || 2 + 2);
//! assert_eq!(result, 4);
//! ```

use crate::{audit, registry, trace};
use std::time::Instant;

/// An in-flight stage timer; records on drop.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Instant,
    detail: String,
    /// Span-tree bookkeeping, present only while tracing is enabled and
    /// an item context is open on this thread.
    traced: Option<trace::OpenSpan>,
}

impl Span {
    /// Starts timing `name` now.
    pub fn start(name: &'static str) -> Span {
        Span {
            name,
            start: Instant::now(),
            detail: String::new(),
            traced: trace::open_span(),
        }
    }

    /// Attaches a human-readable note carried into the audit event
    /// (ignored by the metrics histogram).
    pub fn note(&mut self, detail: impl Into<String>) {
        self.detail = detail.into();
    }

    /// The stage name this span records under.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        registry::global().record(self.name, elapsed);
        if let Some(open) = self.traced.take() {
            trace::close_span(open, self.name, &self.detail);
        }
        audit::stage_event(self.name, elapsed, std::mem::take(&mut self.detail));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_into_global_registry() {
        let before = registry::global().snapshot();
        {
            let mut s = Span::start("stage.test_span");
            s.note("noted");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let after = registry::global().snapshot();
        let h = after.stages.get("stage.test_span").expect("recorded");
        let earlier = before
            .stages
            .get("stage.test_span")
            .map(|h| h.count())
            .unwrap_or(0);
        assert_eq!(h.count(), earlier + 1);
        assert!(h.sum() >= 1_000_000, "slept ≥1ms");
    }
}
