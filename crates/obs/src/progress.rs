//! Periodic stderr status line for long corpus runs.
//!
//! A [`Progress`] meter owns a background ticker thread that prints a
//! one-line status to stderr every interval — even while the pipeline is
//! wedged on one slow item, so "is it still moving?" is always
//! answerable. The pipeline reports completions through cheap atomic
//! increments; [`Progress::finish`] stops the ticker and always prints a
//! final summary line. Strictly stderr: stdout belongs to the census.
//!
//! Redraw policy: the interval is clamped to [`MIN_INTERVAL`] (at most
//! 10 redraws/sec — a meter must never dominate a fast run's I/O), and
//! the periodic ticker only runs when stderr is a terminal. Piped
//! stderr (CI logs, `2>file`) still gets the final summary line from
//! [`Progress::finish`], just not the intermediate repaints. When the
//! corpus length is known, the line carries an ETA extrapolated from
//! the running item rate.

use std::io::IsTerminal;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Floor on the redraw interval: at most 10 redraws per second.
pub const MIN_INTERVAL: Duration = Duration::from_millis(100);

/// How a completed corpus item classifies for the status line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemClass {
    /// Analyzed cleanly.
    Analyzed,
    /// Analyzed from a damaged capture.
    Salvaged,
    /// Produced no analysis.
    Failed,
}

#[derive(Debug)]
struct Shared {
    total: Option<u64>,
    done: AtomicU64,
    salvaged: AtomicU64,
    failed: AtomicU64,
    stop: AtomicBool,
    start: Instant,
}

impl Shared {
    fn line(&self) -> String {
        let done = self.done.load(Ordering::Relaxed);
        let salvaged = self.salvaged.load(Ordering::Relaxed);
        let failed = self.failed.load(Ordering::Relaxed);
        let secs = self.start.elapsed().as_secs_f64();
        let rate = if secs > 0.0 { done as f64 / secs } else { 0.0 };
        let of_total = match self.total {
            Some(total) => format!("{done}/{total}"),
            None => format!("{done}"),
        };
        let eta = match self.total {
            // Extrapolate from the running rate once at least one item
            // finished; "eta -" before that and once the run is done.
            Some(total) if done > 0 && done < total && rate > 0.0 => {
                format!(" eta {:.0}s", (total - done) as f64 / rate)
            }
            Some(total) if done < total => " eta -".to_string(),
            _ => String::new(),
        };
        format!(
            "progress {of_total} traces ({salvaged} salvaged, {failed} failed) {rate:.1}/s elapsed {secs:.1}s{eta}"
        )
    }

    fn emit(&self) {
        eprintln!("{}: {}", crate::log::program(), self.line());
    }
}

/// A running progress meter; construct with [`Progress::start`].
#[derive(Debug)]
pub struct Progress {
    shared: Arc<Shared>,
    ticker: Option<std::thread::JoinHandle<()>>,
}

impl Progress {
    /// Starts the meter and — when stderr is a terminal — its ticker
    /// thread. `total` sizes the "done/total" readout when the corpus
    /// length is known up front. The interval is clamped to
    /// [`MIN_INTERVAL`].
    pub fn start(total: Option<usize>, interval: Duration) -> Progress {
        let interval = interval.max(MIN_INTERVAL);
        let shared = Arc::new(Shared {
            total: total.map(|n| n as u64),
            done: AtomicU64::new(0),
            salvaged: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            start: Instant::now(),
        });
        // Intermediate repaints are only useful on an interactive
        // terminal; a piped stderr keeps just the final summary line.
        if !std::io::stderr().is_terminal() {
            return Progress {
                shared,
                ticker: None,
            };
        }
        let ticker_shared = Arc::clone(&shared);
        let ticker = std::thread::Builder::new()
            .name("tcpa-progress".into())
            // tcpa-lint: allow(thread-spawn-audit) -- stderr progress ticker only; touches no analysis state and is stopped and joined by finish()
            .spawn(move || {
                let mut last = Instant::now();
                // Sleep in short steps so finish() never blocks a full
                // interval waiting for the ticker to notice.
                while !ticker_shared.stop.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(25));
                    if last.elapsed() >= interval {
                        ticker_shared.emit();
                        last = Instant::now();
                    }
                }
            })
            .ok();
        Progress { shared, ticker }
    }

    /// Reports one completed item.
    pub fn observe(&self, class: ItemClass) {
        self.shared.done.fetch_add(1, Ordering::Relaxed);
        match class {
            ItemClass::Analyzed => {}
            ItemClass::Salvaged => {
                self.shared.salvaged.fetch_add(1, Ordering::Relaxed);
            }
            ItemClass::Failed => {
                self.shared.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Stops the ticker and prints the final status line.
    pub fn finish(mut self) {
        self.stop_ticker();
        self.shared.emit();
    }

    fn stop_ticker(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.ticker.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Progress {
    fn drop(&mut self) {
        // finish() already joined; an abandoned meter must still stop
        // its ticker rather than print forever.
        self.stop_ticker();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_line_format() {
        let p = Progress::start(Some(10), Duration::from_secs(3600));
        p.observe(ItemClass::Analyzed);
        p.observe(ItemClass::Salvaged);
        p.observe(ItemClass::Failed);
        let line = p.shared.line();
        assert!(line.contains("3/10 traces"), "{line}");
        assert!(line.contains("(1 salvaged, 1 failed)"), "{line}");
        p.finish();
    }

    #[test]
    fn unknown_total_omits_denominator_and_eta() {
        let p = Progress::start(None, Duration::from_secs(3600));
        p.observe(ItemClass::Analyzed);
        let line = p.shared.line();
        assert!(line.contains("progress 1 traces"), "{line}");
        assert!(!line.contains("eta"), "{line}");
    }

    #[test]
    fn eta_appears_midway_and_disappears_when_done() {
        let p = Progress::start(Some(4), Duration::from_secs(3600));
        p.observe(ItemClass::Analyzed);
        p.observe(ItemClass::Analyzed);
        std::thread::sleep(Duration::from_millis(5));
        let midway = p.shared.line();
        assert!(midway.contains(" eta "), "{midway}");
        p.observe(ItemClass::Analyzed);
        p.observe(ItemClass::Analyzed);
        let done = p.shared.line();
        assert!(!done.contains("eta"), "{done}");
    }
}
