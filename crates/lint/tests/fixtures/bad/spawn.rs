// Bad: ad-hoc threads outside corpus.rs with no justification.
fn background() {
    std::thread::spawn(|| {});
    let builder = std::thread::Builder::new();
    let _ = builder.spawn(|| {});
}
