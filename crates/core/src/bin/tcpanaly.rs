//! `tcpanaly` — the command-line analyzer, as the paper shipped it.
//!
//! ```text
//! tcpanaly [--sender|--receiver] [--impl NAME] [--handshake]
//!          [--receiver-fingerprint] [--list-impls] [--jobs N]
//!          TRACE.pcap... | DIR...
//! ```
//!
//! Reads tcpdump-format captures, calibrates them (§3), and reports the
//! per-connection implementation fingerprint (§5/§6) and receiver audit
//! (§7/§9). With `--impl NAME` it checks a single candidate and prints
//! the full disagreement detail instead of the ranking.
//!
//! With `--jobs N` it switches to batch mode: every argument is a pcap
//! file or a directory of them, the corpus is analyzed on `N` worker
//! threads (`0` = one per CPU), and a single merged census is printed.
//! Batch output is byte-identical for any `N`.
//!
//! `--degrade MODE` decides what a damaged capture does to the run:
//! `skip` (default) reports it as a failed item, `salvage` recovers what
//! it can and accounts the damage, `strict` aborts with exit code 3.
//!
//! Observability: `--metrics-out FILE` writes a `tcpa-metrics/v1` JSON
//! snapshot of every counter and stage histogram, `--audit-dir DIR`
//! writes one `tcpa-audit/v1` event log per trace, `--trace-out FILE`
//! writes the run's hierarchical span tree in Chrome `trace_event`
//! format (open it in Perfetto or `chrome://tracing`), `--progress`
//! prints a periodic stderr status line, and `--quiet`/`-v`/`-vv` set
//! diagnostic verbosity. Machine output (census, reports) stays on
//! stdout; diagnostics stay on stderr.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;
use tcpa_tcpsim::profiles::{all_profiles, profile_by_name};
use tcpa_trace::pcap_io;
use tcpa_trace::Connection;
use tcpa_trace::MemorySource;
use tcpanaly::corpus::{analyze_corpus, CorpusConfig, DegradePolicy};
use tcpanaly::fingerprint::{fingerprint_one, fingerprint_receiver};
use tcpanaly::handshake::analyze_handshake;
use tcpanaly::obs::{self, audit, log};
use tcpanaly::report::emit_stdout;
use tcpanaly::Analyzer;

struct Options {
    vantage: Vantage,
    implementation: Option<String>,
    handshake: bool,
    receiver_fp: bool,
    jobs: Option<usize>,
    degrade: DegradePolicy,
    timeout_secs: Option<u64>,
    metrics_out: Option<PathBuf>,
    audit_dir: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    progress: bool,
    level: log::Level,
    files: Vec<String>,
}

#[derive(PartialEq, Clone, Copy)]
enum Vantage {
    Sender,
    Receiver,
    Unknown,
}

const USAGE: &str = "usage: tcpanaly [options] TRACE.pcap...

options:
  --sender                trace was captured at the data sender (default: auto-detect)
  --receiver              trace was captured at the receiver
  --impl NAME             check one implementation instead of ranking all
  --handshake             also report the SYN-retry schedule
  --receiver-fingerprint  also rank receiver-side (acking policy) candidates
  --list-impls            list known implementations and exit
  --jobs N                batch mode: analyze a corpus of pcaps (or directories
                          of pcaps) on N worker threads (0 = one per CPU) and
                          print one merged census
  --degrade MODE          damaged-capture policy: skip (default) reports the
                          item as failed, salvage recovers readable records and
                          accounts the damage, strict aborts the run
  --timeout-secs N        per-trace analysis watchdog (batch mode); overruns
                          are reported as timed-out items
  --metrics-out FILE      write a tcpa-metrics/v1 JSON snapshot of all
                          counters and stage-duration histograms on exit
  --audit-dir DIR         write one tcpa-audit/v1 JSON event log per trace
                          (stage durations, retries, errors, verdicts)
  --trace-out FILE        write the run's span tree as a Chrome trace_event
                          JSON file (one lane per worker plus the watchdog;
                          view in Perfetto or chrome://tracing)
  --progress              print a periodic status line to stderr while a
                          batch run drains (stdout is never touched)
  --quiet                 only error diagnostics on stderr
  -v / -vv                info / debug diagnostics on stderr

exit codes: 0 success, 1 failed items, 2 usage error, 3 strict-mode abort
";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        vantage: Vantage::Unknown,
        implementation: None,
        handshake: false,
        receiver_fp: false,
        jobs: None,
        degrade: DegradePolicy::default(),
        timeout_secs: None,
        metrics_out: None,
        audit_dir: None,
        trace_out: None,
        progress: false,
        level: log::Level::Warn,
        files: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sender" => opts.vantage = Vantage::Sender,
            "--receiver" => opts.vantage = Vantage::Receiver,
            "--impl" => {
                let name = args.next().ok_or("--impl requires a name")?;
                opts.implementation = Some(name);
            }
            "--jobs" => {
                let n = args.next().ok_or("--jobs requires a count")?;
                let n: usize = n
                    .parse()
                    .map_err(|_| format!("--jobs: invalid count {n:?}"))?;
                opts.jobs = Some(n);
            }
            "--degrade" => {
                let mode = args.next().ok_or("--degrade requires a mode")?;
                opts.degrade = mode.parse()?;
            }
            "--timeout-secs" => {
                let n = args.next().ok_or("--timeout-secs requires a count")?;
                let n: u64 = n
                    .parse()
                    .map_err(|_| format!("--timeout-secs: invalid count {n:?}"))?;
                opts.timeout_secs = Some(n);
            }
            "--metrics-out" => {
                let path = args.next().ok_or("--metrics-out requires a path")?;
                opts.metrics_out = Some(PathBuf::from(path));
            }
            "--audit-dir" => {
                let path = args.next().ok_or("--audit-dir requires a directory")?;
                opts.audit_dir = Some(PathBuf::from(path));
            }
            "--trace-out" => {
                let path = args.next().ok_or("--trace-out requires a path")?;
                opts.trace_out = Some(PathBuf::from(path));
            }
            "--progress" => opts.progress = true,
            "--quiet" => opts.level = log::Level::Error,
            "-v" => opts.level = log::Level::Info,
            "-vv" => opts.level = log::Level::Debug,
            "--handshake" => opts.handshake = true,
            "--receiver-fingerprint" => opts.receiver_fp = true,
            "--list-impls" => {
                for p in all_profiles() {
                    emit_stdout(&format!("{:<22} ({})\n", p.name, p.lineage));
                }
                std::process::exit(0);
            }
            "--help" | "-h" => {
                emit_stdout(USAGE);
                std::process::exit(0);
            }
            other if other.starts_with("--degrade=") => {
                opts.degrade = other
                    .strip_prefix("--degrade=")
                    .unwrap_or_default()
                    .parse()?;
            }
            other if other.starts_with("--metrics-out=") => {
                opts.metrics_out = Some(PathBuf::from(
                    other.strip_prefix("--metrics-out=").unwrap_or_default(),
                ));
            }
            other if other.starts_with("--audit-dir=") => {
                opts.audit_dir = Some(PathBuf::from(
                    other.strip_prefix("--audit-dir=").unwrap_or_default(),
                ));
            }
            other if other.starts_with("--trace-out=") => {
                opts.trace_out = Some(PathBuf::from(
                    other.strip_prefix("--trace-out=").unwrap_or_default(),
                ));
            }
            other if other.starts_with("--timeout-secs=") => {
                let n = other.strip_prefix("--timeout-secs=").unwrap_or_default();
                let n: u64 = n
                    .parse()
                    .map_err(|_| format!("--timeout-secs: invalid count {n:?}"))?;
                opts.timeout_secs = Some(n);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other}"));
            }
            file => opts.files.push(file.to_string()),
        }
    }
    if opts.files.is_empty() {
        return Err("no trace files given".into());
    }
    if opts.jobs.is_some() && (opts.implementation.is_some() || opts.handshake || opts.receiver_fp)
    {
        return Err(
            "--jobs batch mode is incompatible with --impl/--handshake/--receiver-fingerprint"
                .into(),
        );
    }
    Ok(opts)
}

/// Expands batch-mode arguments: files pass through, directories expand to
/// their `*.pcap` entries sorted by name.
fn expand_corpus_args(args: &[String]) -> Result<Vec<PathBuf>, String> {
    let mut paths = Vec::new();
    for arg in args {
        let p = Path::new(arg);
        if p.is_dir() {
            let mut in_dir: Vec<PathBuf> = std::fs::read_dir(p)
                .map_err(|e| format!("{arg}: {e}"))?
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .filter(|p| p.is_file() && p.extension().map(|e| e == "pcap").unwrap_or(false))
                .collect();
            in_dir.sort();
            if in_dir.is_empty() {
                return Err(format!("{arg}: directory contains no .pcap files"));
            }
            paths.extend(in_dir);
        } else {
            paths.push(p.to_path_buf());
        }
    }
    Ok(paths)
}

/// Batch mode: analyze the whole corpus in parallel, print one census.
/// Exit code 0 when every item analyzed (possibly salvaged), 1 when any
/// failed, 3 when a strict-policy run aborted on a malformed capture.
fn run_batch(opts: &Options, jobs: usize) -> ExitCode {
    let paths = match expand_corpus_args(&opts.files) {
        Ok(p) => p,
        Err(e) => {
            log::error(&format!("{e}\n{USAGE}"));
            return ExitCode::from(2);
        }
    };
    log::info(&format!(
        "batch mode: {} traces, {jobs} jobs, degrade={}",
        paths.len(),
        opts.degrade
    ));
    let config = CorpusConfig {
        jobs,
        vantage: match opts.vantage {
            Vantage::Sender => tcpanaly::calibrate::Vantage::Sender,
            Vantage::Receiver => tcpanaly::calibrate::Vantage::Receiver,
            Vantage::Unknown => tcpanaly::calibrate::Vantage::Unknown,
        },
        degrade: opts.degrade,
        timeout: opts.timeout_secs.map(std::time::Duration::from_secs),
        audit_dir: opts.audit_dir.clone(),
        // --quiet wins over --progress: errors only means errors only.
        progress: (opts.progress && opts.level != log::Level::Error)
            .then(|| std::time::Duration::from_millis(500)),
        ..CorpusConfig::default()
    };
    // A panicking trace is reported in the census as a failed item; keep
    // the default hook from interleaving backtrace noise with the report.
    let prior_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = analyze_corpus(MemorySource::from_pcap_files(paths), &config);
    std::panic::set_hook(prior_hook);
    emit_stdout(&report.render());
    if report.aborted {
        if let Some(first) = report.first_failure() {
            log::error(&format!(
                "strict mode aborted on {}: {}",
                first.id,
                match &first.outcome {
                    tcpanaly::corpus::ItemOutcome::Failed(e) => e.to_string(),
                    _ => String::new(),
                }
            ));
        }
        return ExitCode::from(3);
    }
    if report.census.failed() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Why a single-file analysis failed; `malformed` drives the strict-mode
/// abort in `main`.
struct FileFailure {
    message: String,
    malformed: bool,
}

fn analyze_file(path: &str, opts: &Options) -> Result<(), FileFailure> {
    let bytes = std::fs::read(path).map_err(|e| FileFailure {
        message: format!("{path}: {e}"),
        malformed: false,
    })?;
    let trace = match opts.degrade {
        DegradePolicy::Salvage => {
            let (trace, report) = pcap_io::read_pcap_salvage_bytes(&bytes);
            emit_stdout(&format!("== {path}: {report}\n"));
            trace
        }
        DegradePolicy::Strict | DegradePolicy::Skip => {
            match pcap_io::read_pcap(std::io::Cursor::new(bytes.as_slice())) {
                Ok((trace, skipped)) => {
                    emit_stdout(&format!(
                        "== {path}: {} records ({skipped} non-TCP skipped)\n",
                        trace.len()
                    ));
                    trace
                }
                Err(tcpa_wire::pcap::PcapError::Io(e)) => {
                    return Err(FileFailure {
                        message: format!("{path}: {e}"),
                        malformed: false,
                    })
                }
                Err(e) => {
                    return Err(FileFailure {
                        message: format!("{path}: {e}"),
                        malformed: true,
                    })
                }
            }
        }
    };

    let analyzer = match opts.vantage {
        Vantage::Sender => Analyzer::at_sender(),
        Vantage::Receiver => Analyzer::at_receiver(),
        Vantage::Unknown => {
            let a = Analyzer::auto(&trace);
            emit_stdout(&format!(
                "vantage: auto-detected {:?} (override with --sender/--receiver)\n",
                a.vantage()
            ));
            a
        }
    };

    if let Some(name) = &opts.implementation {
        let cfg = profile_by_name(name).ok_or_else(|| FileFailure {
            message: format!("unknown implementation {name:?}; try --list-impls"),
            malformed: false,
        })?;
        let (clean, cal) = tcpanaly::Calibrator::new().calibrate(&trace);
        if !cal.is_clean() {
            emit_stdout(&format!(
                "calibration: {} dups removed, {} time travel, {} reseq, {} drop evidence\n",
                cal.duplicates.len(),
                cal.time_travel.len(),
                cal.resequencing.len(),
                cal.drop_evidence.len()
            ));
        }
        for conn in Connection::split(&clean) {
            emit_stdout(&format!(
                "-- connection {} -> {}\n",
                conn.sender, conn.receiver
            ));
            match fingerprint_one(&conn, &cfg) {
                None => emit_stdout("   no analyzable bulk data\n"),
                Some(fit) => {
                    let mut delays = fit.analysis.response_delays.clone();
                    emit_stdout(&format!(
                        "   {}: {} — {} issues, delays p50 {} p90 {}\n",
                        cfg.name,
                        fit.fit,
                        fit.analysis.issues.len(),
                        delays.median().map(|d| d.to_string()).unwrap_or_default(),
                        delays
                            .percentile(90.0)
                            .map(|d| d.to_string())
                            .unwrap_or_default()
                    ));
                    for issue in fit.analysis.issues.iter().take(10) {
                        emit_stdout(&format!(
                            "   {:?} @{}: {}\n",
                            issue.kind, issue.time, issue.detail
                        ));
                    }
                    if fit.analysis.issues.len() > 10 {
                        emit_stdout(&format!("   … {} more\n", fit.analysis.issues.len() - 10));
                    }
                }
            }
        }
        return Ok(());
    }

    let report = analyzer.analyze(&trace);
    emit_stdout(&report.render());

    if opts.handshake || opts.receiver_fp {
        let (clean, _) = tcpanaly::Calibrator::new().calibrate(&trace);
        for conn in Connection::split(&clean) {
            if opts.handshake {
                match analyze_handshake(&conn) {
                    Some(h) => emit_stdout(&format!(
                        "handshake {} -> {}: {} retries, initial RTO {}, backoff {:?}\n",
                        conn.sender,
                        conn.receiver,
                        h.retries(),
                        h.initial_rto
                            .map(|d| d.to_string())
                            .unwrap_or_else(|| "-".into()),
                        h.shape
                    )),
                    None => emit_stdout("handshake: no SYN captured\n"),
                }
            }
            if opts.receiver_fp {
                emit_stdout("receiver-side candidates (consistent first):\n");
                for fit in fingerprint_receiver(&conn).iter().take(8) {
                    emit_stdout(&format!(
                        "  {:<22} {}\n",
                        fit.name,
                        if fit.consistent {
                            "consistent".to_string()
                        } else {
                            format!("contradicted: {}", fit.contradictions.join("; "))
                        }
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Single-file mode: analyze each file in turn, with a per-file audit
/// trail when `--audit-dir` is set.
fn run_files(opts: &Options) -> ExitCode {
    let mut failed = false;
    for (index, file) in opts.files.iter().enumerate() {
        if opts.audit_dir.is_some() {
            audit::begin(file.as_str(), index as u64);
        }
        obs::trace::begin_item(file.as_str(), index as u64);
        let mut item_span = obs::span("corpus.item");
        item_span.note(file.as_str());
        let result = analyze_file(file, opts);
        drop(item_span);
        obs::trace::end_item();
        let outcome = match &result {
            Ok(()) => "analyzed".to_string(),
            Err(e) => {
                let class = if e.malformed { "malformed" } else { "io" };
                audit::event(audit::EventKind::Error, class, e.message.clone());
                format!("failed.{class}")
            }
        };
        if let (Some(trail), Some(dir)) = (audit::take(&outcome), opts.audit_dir.as_deref()) {
            if let Err(e) = trail.write_to(dir) {
                log::warn(&format!("audit trail for {file} not written: {e}"));
            }
        }
        if let Err(e) = result {
            log::error(&e.message);
            if e.malformed && opts.degrade == DegradePolicy::Strict {
                log::error(&format!("strict mode aborted on {file}"));
                return ExitCode::from(3);
            }
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Writes the `tcpa-metrics/v1` snapshot of the whole run.
fn write_metrics(path: &Path, started: Instant) -> Result<(), obs::write::WriteError> {
    // Declare the counters a healthy run never touches, so the document
    // carries the full vocabulary with stable zeros.
    for name in [
        "corpus.io_retries",
        "corpus.failed.io",
        "corpus.failed.malformed",
        "corpus.failed.timeout",
        "corpus.failed.panic",
        "corpus.salvaged",
        "corpus.salvage.bytes_skipped",
        "corpus.salvage.damage_regions",
        "corpus.audit.write_errors",
    ] {
        obs::registry::global().declare(name);
    }
    let snapshot = obs::registry::global().snapshot();
    obs::write::write_with_parents(path, &snapshot.to_json(started.elapsed().as_secs_f64()))
}

/// Drains the span-tree collector and writes the Chrome trace_event
/// document.
fn write_trace_out(path: &Path) -> Result<(), obs::write::WriteError> {
    let events = obs::trace::drain();
    log::debug(&obs::trace::summary_line(&events));
    obs::write::write_with_parents(path, &obs::trace::render_chrome(&events))
}

fn main() -> ExitCode {
    // tcpa-lint: allow(determinism-hazards) -- wall-clock here only feeds the metrics wall_clock gauge, which is outside the byte-stability contract
    let started = Instant::now();
    log::set_program("tcpanaly");
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            log::error(&format!("{e}\n{USAGE}"));
            return ExitCode::from(2);
        }
    };
    log::set_level(opts.level);
    if opts.trace_out.is_some() {
        obs::trace::enable();
    }
    let code = match opts.jobs {
        Some(jobs) => run_batch(&opts, jobs),
        None => run_files(&opts),
    };
    if let Some(path) = &opts.trace_out {
        if let Err(e) = write_trace_out(path) {
            log::error(&format!("trace: {e}"));
            return ExitCode::from(2);
        }
    }
    if let Some(path) = &opts.metrics_out {
        if let Err(e) = write_metrics(path, started) {
            log::error(&format!("metrics: {e}"));
            return ExitCode::from(2);
        }
    }
    if let Some(line) = obs::registry::global().snapshot().human_summary() {
        log::info(&line);
    }
    code
}
