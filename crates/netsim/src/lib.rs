#![warn(missing_docs)]

//! `tcpa-netsim` — a deterministic discrete-event network simulator.
//!
//! This is the substrate standing in for the Internet paths of the paper's
//! measurement study. It models:
//!
//! * **hosts** running a protocol [`Stack`] (the TCP endpoint simulators
//!   from `tcpa-tcpsim`), each with a configurable packet-processing delay
//!   — the source of the paper's *vantage point* ambiguities (§3.2);
//! * **unidirectional links** with a bandwidth, propagation delay and a
//!   drop-tail queue, plus injectable loss (Bernoulli or an exact drop
//!   list) — enough to reproduce every path effect the paper's analysis
//!   depends on (queueing, loss, high RTT);
//! * **taps**: perfect per-host records of wire events, from which
//!   `tcpa-filter` manufactures *imperfect* packet-filter traces;
//! * **ground truth**: exactly which packets the network dropped, so tests
//!   can check that the analyzer never confuses genuine network drops with
//!   measurement drops (§3.1.1).
//!
//! Everything is deterministic: the only randomness comes from a seeded
//! [`rng::SplitMix64`], and events at equal timestamps are ordered by
//! insertion sequence.

pub mod engine;
pub mod link;
pub mod packet;
pub mod rng;
pub mod stack;

pub use engine::{
    perfect_trace, Engine, GroundTruth, HostId, NetBuilder, SimResults, TapDir, TapEvent,
};
pub use link::{LinkParams, LossModel};
pub use packet::{Packet, PacketKind};
pub use stack::Stack;
