#![warn(missing_docs)]

//! `tcpanaly` — automated packet-trace analysis of TCP implementations.
//!
//! A Rust reproduction of the tool described in Vern Paxson, *Automated
//! Packet Trace Analysis of TCP Implementations*, SIGCOMM 1997. Given a
//! packet-filter trace of one bulk-transfer TCP connection, the analyzer:
//!
//! 1. **Calibrates the trace** ([`calibrate`]) — removes measurement
//!    duplicates (§3.1.2), detects timestamp "time travel" (§3.1.4),
//!    flags filter resequencing (§3.1.3), and runs the self-consistency
//!    checks that distinguish *packet-filter drops* from genuine network
//!    drops (§3.1.1).
//! 2. **Analyzes sender behavior** ([`sender`]) — replays the trace
//!    against a coded model of a candidate TCP implementation, computing
//!    *data liberations*, per-packet *response delays*, *window
//!    violations* and *lulls* (§6.1), and inferring implicit state: the
//!    sender window and unseen ICMP source-quench messages (§6.2).
//! 3. **Analyzes receiver behavior** ([`receiver`]) — tracks *ack
//!    obligations*, flags *gratuitous acks*, classifies acks as
//!    delayed / normal / stretch, and infers packet corruption from
//!    behavior when checksums cannot be verified (§7, §9).
//! 4. **Fingerprints the implementation** ([`fingerprint`]) — runs every
//!    known behavior profile against the trace and sorts them into
//!    *close*, *imperfect* and *clearly-incorrect* fits (§5, §6.1).
//!
//! At corpus scale, [`corpus`] shards many traces across worker threads
//! and merges the per-trace conclusions into a deterministic census
//! (the paper analyzed tens of thousands of traces this way).
//!
//! The per-implementation behavioral knowledge (the paper's 1,400 lines of
//! C++ subclasses) is shared with the endpoint simulators: it lives in
//! `tcpa-tcpsim`'s [`TcpConfig`](tcpa_tcpsim::TcpConfig) and pure
//! congestion rules, which this crate *replays* rather than executes.
//!
//! ```no_run
//! use tcpanaly::Analyzer;
//! use tcpa_trace::pcap_io;
//!
//! let (trace, _) = pcap_io::read_pcap(std::fs::File::open("conn.pcap")?)?;
//! let report = Analyzer::new().analyze(&trace);
//! println!("{}", report.render());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use tcpa_obs as obs;

pub mod calibrate;
pub mod corpus;
pub mod fingerprint;
pub mod handshake;
pub mod receiver;
pub mod report;
pub mod sender;

pub use calibrate::{CalibrationReport, Calibrator};
pub use corpus::{analyze_corpus, Census, CorpusConfig, CorpusReport, ItemOutcome, ItemReport};
pub use fingerprint::{FingerprintResult, FitClass};
pub use handshake::{analyze_handshake, BackoffShape, HandshakeAnalysis};
pub use receiver::{AckClass, ReceiverAnalysis};
pub use report::{AnalysisReport, Analyzer};
pub use sender::{SenderAnalysis, SenderIssue};
