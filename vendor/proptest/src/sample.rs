//! Sampling helpers.

use crate::arbitrary::Arbitrary;
use crate::test_runner::Rng;

/// An index into a collection whose length is only known at use time.
/// Generate one with `any::<Index>()`, then project it with
/// [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Maps this abstract index into `0..len`. Panics if `len` is zero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        (self.0 % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut Rng) -> Index {
        Index(rng.next_u64())
    }
}
