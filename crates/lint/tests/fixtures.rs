//! Self-test corpus: lints `tests/fixtures/` in-process and pins the
//! whole report — findings, allows, file count — to a golden JSON
//! document, byte for byte.

use std::path::{Path, PathBuf};

use tcpa_lint::rules::MALFORMED_RULE;
use tcpa_lint::{check_dir, Config, RULE_NAMES};

const GOLDEN: &str = include_str!("goldens/fixtures.json");

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixtures_config() -> Config {
    let src = std::fs::read_to_string(fixtures_root().join("Lint.toml")).unwrap();
    Config::parse(&src, RULE_NAMES).unwrap()
}

#[test]
fn fixture_report_matches_golden_bytes() {
    let report = check_dir(&fixtures_root(), &fixtures_config()).unwrap();
    assert!(!report.is_clean(), "bad fixtures must produce findings");
    assert_eq!(
        report.render_json(),
        GOLDEN,
        "fixture report drifted from goldens/fixtures.json; \
         regenerate with `cargo run -p tcpa-lint -- check --root crates/lint/tests/fixtures --format json`"
    );
}

#[test]
fn every_rule_fires_on_its_bad_fixture() {
    let report = check_dir(&fixtures_root(), &fixtures_config()).unwrap();
    for rule in RULE_NAMES.iter().chain([&MALFORMED_RULE]) {
        assert!(
            report.findings.iter().any(|f| f.rule == *rule),
            "no bad fixture triggers rule {rule}"
        );
    }
}

#[test]
fn good_fixtures_survive_only_via_justified_allows() {
    let report = check_dir(&fixtures_root(), &fixtures_config()).unwrap();
    assert!(
        report.findings.iter().all(|f| f.path.starts_with("bad/")),
        "a good/ fixture produced an unsuppressed finding: {:?}",
        report.findings.iter().find(|f| !f.path.starts_with("bad/"))
    );
    assert!(
        report
            .allowed
            .iter()
            .all(|a| !a.justification.trim().is_empty()),
        "an allow slipped through without a justification"
    );
    assert!(
        report.allowed.iter().any(|a| a.path == "good/spawn.rs"),
        "the justified spawn allow should land in the allowed list"
    );
}

#[test]
fn two_runs_render_byte_identical_json() {
    let config = fixtures_config();
    let a = check_dir(&fixtures_root(), &config).unwrap().render_json();
    let b = check_dir(&fixtures_root(), &config).unwrap().render_json();
    assert_eq!(a, b);
}
