//! Ethernet II framing.
//!
//! The simulators frame every packet as Ethernet II so that the pcap files
//! they produce use the ubiquitous `LINKTYPE_ETHERNET` (1) and can be opened
//! by standard tools.

use crate::{Result, WireError};
use core::fmt;

/// A 48-bit IEEE 802 MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// A locally-administered unicast address derived from a small host id,
    /// handy for simulators: `02:00:00:00:00:<id>`.
    pub fn from_host_id(id: u8) -> MacAddr {
        MacAddr([0x02, 0, 0, 0, 0, id])
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// The EtherType field values this crate understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (`0x0800`).
    Ipv4,
    /// ARP (`0x0806`) — recognized but never emitted by the simulators.
    Arp,
    /// Anything else, preserved verbatim.
    Other(u16),
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(v: EtherType) -> u16 {
        match v {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(other) => other,
        }
    }
}

/// Length of the Ethernet II header in bytes.
pub const HEADER_LEN: usize = 14;

/// A decoded Ethernet II header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetRepr {
    /// Destination MAC address.
    pub dst: MacAddr,
    /// Source MAC address.
    pub src: MacAddr,
    /// EtherType of the payload.
    pub ethertype: EtherType,
}

impl EthernetRepr {
    /// Parses the header from the front of `frame`, returning the header
    /// and the payload slice.
    pub fn parse(frame: &[u8]) -> Result<(EthernetRepr, &[u8])> {
        if frame.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&frame[0..6]);
        src.copy_from_slice(&frame[6..12]);
        let ethertype = u16::from_be_bytes([frame[12], frame[13]]).into();
        Ok((
            EthernetRepr {
                dst: MacAddr(dst),
                src: MacAddr(src),
                ethertype,
            },
            &frame[HEADER_LEN..],
        ))
    }

    /// Appends the encoded header to `buf`.
    pub fn emit(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.dst.0);
        buf.extend_from_slice(&self.src.0);
        buf.extend_from_slice(&u16::from(self.ethertype).to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let repr = EthernetRepr {
            dst: MacAddr::from_host_id(2),
            src: MacAddr::from_host_id(1),
            ethertype: EtherType::Ipv4,
        };
        let mut buf = Vec::new();
        repr.emit(&mut buf);
        buf.extend_from_slice(b"payload");
        let (parsed, payload) = EthernetRepr::parse(&buf).unwrap();
        assert_eq!(parsed, repr);
        assert_eq!(payload, b"payload");
    }

    #[test]
    fn truncated_header_rejected() {
        assert_eq!(
            EthernetRepr::parse(&[0u8; 13]).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn unknown_ethertype_preserved() {
        let repr = EthernetRepr {
            dst: MacAddr::BROADCAST,
            src: MacAddr::from_host_id(7),
            ethertype: EtherType::Other(0x88cc),
        };
        let mut buf = Vec::new();
        repr.emit(&mut buf);
        let (parsed, _) = EthernetRepr::parse(&buf).unwrap();
        assert_eq!(parsed.ethertype, EtherType::Other(0x88cc));
    }

    #[test]
    fn mac_display() {
        assert_eq!(MacAddr::from_host_id(0x2a).to_string(), "02:00:00:00:00:2a");
    }
}
